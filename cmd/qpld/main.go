// Command qpld decomposes one layout file for quadruple (or general K)
// patterning lithography and prints mask statistics, reproducing the flow
// of Fig. 2 of the DAC'14 paper.
//
// Usage:
//
//	qpld [-k 4] [-alg sdp-backtrack] [-alpha 0.1] [-verify] [-masks out.lay] input.lay
//	qpld serve [-addr :8470] [-cache 256] [-workers N] [-timeout 30s]
//
// Algorithms: ilp, sdp-backtrack, sdp-greedy, linear. The serve subcommand
// runs the HTTP JSON decomposition service (see serve.go).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpl"
	"mpl/internal/division"
	"mpl/internal/layout"
	"mpl/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qpld: ")
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	k := flag.Int("k", 4, "number of masks (K-patterning)")
	algName := flag.String("alg", "sdp-backtrack", "color assignment algorithm: ilp, sdp-backtrack, sdp-greedy, linear")
	alpha := flag.Float64("alpha", 0.1, "stitch weight α")
	minS := flag.Int("mins", 0, "minimum coloring distance (0 = derive from process and K)")
	seed := flag.Int64("seed", 1, "random seed for the SDP solver")
	verify := flag.Bool("verify", false, "independently re-verify conflicts/stitches from geometry")
	masksOut := flag.String("masks", "", "write per-mask layouts to this file prefix (<prefix>-mask<i>.lay)")
	noStitch := flag.Bool("no-stitches", false, "disable stitch candidate generation")
	workers := flag.Int("workers", 1, "parallel component workers")
	balanceFlag := flag.Bool("balance", false, "rebalance mask density after assignment (cost-free rotations)")
	svgOut := flag.String("svg", "", "render the decomposition to this SVG file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qpld [flags] input.lay")
		flag.PrintDefaults()
		os.Exit(2)
	}
	alg, err := mpl.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	l, err := layout.ReadAny(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	res, err := mpl.Decompose(l, mpl.Options{
		K:         *k,
		Algorithm: alg,
		Alpha:     *alpha,
		Seed:      *seed,
		Build:     mpl.BuildOptions{MinS: *minS, DisableStitches: *noStitch},
		Division:  division.Options{Workers: *workers},
	})
	if err != nil {
		log.Fatal(err)
	}

	st := res.Graph.Stats
	fmt.Printf("layout      %s (%d features)\n", l.Name, st.Features)
	fmt.Printf("graph       %d fragments, %d conflict edges, %d stitch edges, %d friend edges\n",
		st.Fragments, st.ConflictEdges, st.StitchEdges, st.FriendEdges)
	fmt.Printf("division    %d components, %d peeled, %d blocks, %d GH pieces, %d solver calls\n",
		res.DivisionStats.Components, res.DivisionStats.Peeled, res.DivisionStats.Blocks,
		res.DivisionStats.GHComponents, res.DivisionStats.SolverCalls)
	fmt.Printf("assignment  %s, K=%d, alpha=%.2f\n", alg, *k, *alpha)
	fmt.Printf("result      cn#=%d st#=%d assign=%.3fs (solver %.3fs) proven=%v\n",
		res.Conflicts, res.Stitches, res.AssignTime.Seconds(), res.SolverTime.Seconds(), res.Proven)
	if *balanceFlag {
		before, after := mpl.BalanceMasks(res)
		fmt.Printf("balance     density spread %.3f -> %.3f\n", before, after)
	}
	for c, m := range res.Masks() {
		fmt.Printf("mask %d      %d fragments\n", c, len(m))
	}

	if *verify {
		conf, stit, err := mpl.Verify(res)
		if err != nil {
			log.Fatal(err)
		}
		if conf != res.Conflicts || stit != res.Stitches {
			log.Fatalf("VERIFY FAILED: independent recount says cn#=%d st#=%d", conf, stit)
		}
		fmt.Println("verify      OK (independent geometric recount agrees)")
	}

	if *svgOut != "" {
		if err := viz.WriteResultFile(*svgOut, res, viz.Options{ShowConflicts: true, ShowStitches: true}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote       %s\n", *svgOut)
	}

	if *masksOut != "" {
		for c, shapes := range res.Masks() {
			ml := mpl.NewLayout(fmt.Sprintf("%s-mask%d", l.Name, c))
			ml.Process = l.Process
			for _, s := range shapes {
				ml.Add(s)
			}
			path := fmt.Sprintf("%s-mask%d.lay", *masksOut, c)
			if err := ml.WriteFile(path); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote       %s\n", path)
		}
	}
}
