package main

// In-process restart-recovery test of the durable serving path: the same
// wire traffic tools/restart_smoke.sh drives against a real process, here
// against two httptest servers sharing one data directory. Server A solves
// and advances a session; server A "crashes" (its Service and Store are
// simply dropped, nothing is flushed beyond what the write-ahead discipline
// already persisted); server B, on a fresh Service over the same directory,
// must accept an incremental request against the pre-crash hash without the
// layout ever being re-sent.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpl/internal/service"
	"mpl/internal/store"
)

// durableServer builds a serve mux whose service persists to dir, as if
// started with -data-dir dir.
func durableServer(t *testing.T, dir string) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := &server{
		svc:        service.New(service.Config{CacheSize: 32, Store: st}),
		maxTimeout: 10 * time.Second,
		maxBody:    1 << 20,
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, st
}

func TestServeDurableRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	// Server A: open a session and advance it one batch.
	tsA, stA := durableServer(t, dir)
	var full decomposeResponse
	if resp := postJSON(t, tsA.URL+"/v1/decompose", rowRequest("row", 8), &full); resp.StatusCode != http.StatusOK {
		t.Fatalf("decompose: status %d", resp.StatusCode)
	}
	inc := incrementalRequest{
		Base: full.LayoutHash, K: 4, Algorithm: "sdp-backtrack",
		Edits: []editJSON{{Op: "remove", Feature: 7}},
	}
	var preCrash decomposeResponse
	if resp := postJSON(t, tsA.URL+"/v1/decompose/incremental", inc, &preCrash); resp.StatusCode != http.StatusOK {
		t.Fatalf("incremental: status %d: %+v", resp.StatusCode, preCrash)
	}

	// "Crash" server A. The edit batch was logged before it was answered,
	// so everything needed to continue the session is already on disk.
	tsA.Close()
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	// Server B on the same directory: chain a further batch from the
	// pre-crash hash. The layout is never re-sent — the session must come
	// from the log.
	tsB, _ := durableServer(t, dir)
	inc2 := incrementalRequest{
		Base: preCrash.LayoutHash, K: 4, Algorithm: "sdp-backtrack",
		Edits: []editJSON{{Op: "move", Feature: 0, DX: 25}},
	}
	var postCrash decomposeResponse
	resp := postJSON(t, tsB.URL+"/v1/decompose/incremental", inc2, &postCrash)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart incremental: status %d: %+v", resp.StatusCode, postCrash)
	}
	if postCrash.LayoutHash == "" || postCrash.LayoutHash == preCrash.LayoutHash {
		t.Fatalf("post-restart hash %q must identify the post-edit state", postCrash.LayoutHash)
	}
	if postCrash.Incremental == nil {
		t.Fatalf("post-restart batch must be a fresh incremental solve: %+v", postCrash)
	}

	// /v1/stats must surface the durable counters: the rehydration that
	// served inc2, and the store's own log statistics.
	hr, err := http.Get(tsB.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var stats struct {
		Rehydrations uint64         `json:"rehydrations"`
		Spills       uint64         `json:"spills"`
		StoreErrors  uint64         `json:"store_errors"`
		Store        map[string]any `json:"store"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Rehydrations == 0 {
		t.Fatalf("stats report no rehydration after restart recovery: %+v", stats)
	}
	if stats.StoreErrors != 0 {
		t.Fatalf("restart recovery tripped store errors: %+v", stats)
	}
	if stats.Store == nil {
		t.Fatal("stats carry no store block despite -data-dir serving")
	}
	if n, ok := stats.Store["live_sessions"].(float64); !ok || n < 1 {
		t.Fatalf("store.live_sessions = %v, want >= 1", stats.Store["live_sessions"])
	}
}

// TestServeStatsNoStoreBlock: without -data-dir, /v1/stats must not grow a
// store block — the volatile wire format is unchanged.
func TestServeStatsNoStoreBlock(t *testing.T) {
	ts := testServer(t)
	hr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["store"]; ok {
		t.Fatal("volatile server reports a store block in /v1/stats")
	}
	for _, k := range []string{"rehydrations", "spills", "store_errors"} {
		if v, ok := raw[k].(float64); !ok || v != 0 {
			t.Fatalf("%s = %v, want 0", k, raw[k])
		}
	}
}
