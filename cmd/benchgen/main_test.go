package main

// Determinism tests for benchmark generation: a fixed -seed must emit
// byte-identical .lay files across runs and across any -workers value, and
// seed 0 must keep reproducing the committed benchmarks/*.lay bytes —
// otherwise the golden regression table and the fuzz corpus silently drift
// away from what benchgen regenerates.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpl"
)

// generate runs the generator into a fresh temp dir and returns file bytes
// by name plus the printed status output.
func generate(t *testing.T, names []string, seed int64, workers int) (map[string][]byte, string) {
	t.Helper()
	dir := t.TempDir()
	var out strings.Builder
	if err := run(names, 1.0, seed, workers, dir, false, &out); err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n+".lay"))
		if err != nil {
			t.Fatal(err)
		}
		files[n] = data
	}
	// The status lines embed the output dir; normalize it so runs into
	// different temp dirs stay comparable.
	return files, strings.ReplaceAll(out.String(), dir, "<out>")
}

func TestBenchgenDeterministic(t *testing.T) {
	names := []string{"C432", "C499", "C880", "C1355", "C1908", "C2670"}
	base, baseOut := generate(t, names, 7, 1)
	for _, workers := range []int{1, 2, 8} {
		files, out := generate(t, names, 7, workers)
		if out != baseOut {
			t.Errorf("workers=%d: status output differs:\n%s\nvs\n%s", workers, out, baseOut)
		}
		for _, n := range names {
			if !bytes.Equal(files[n], base[n]) {
				t.Errorf("workers=%d: %s.lay bytes differ from the workers=1 run", workers, n)
			}
		}
	}
	// A different seed must actually change the geometry (the seed is mixed
	// in, not ignored).
	other, _ := generate(t, names[:1], 8, 1)
	if bytes.Equal(other["C432"], base["C432"]) {
		t.Error("seed 8 produced the same C432 bytes as seed 7; the seed is not mixed into generation")
	}
}

func TestParseTarget(t *testing.T) {
	good := map[string]int{"64k": 64_000, "1m": 1_000_000, "2M": 2_000_000, "500": 500, "12K": 12_000}
	for in, want := range good {
		if got, err := parseTarget(in); err != nil || got != want {
			t.Errorf("parseTarget(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "k", "-3k", "0", "1g", "64kk"} {
		if _, err := parseTarget(in); err == nil {
			t.Errorf("parseTarget(%q) did not fail", in)
		}
	}
}

// TestSeriesCalibration: -series emits one layout per target whose feature
// count lands near the target (the scale factor is calibrated from the
// base circuit's nominal feature count), deterministically.
func TestSeriesCalibration(t *testing.T) {
	emit := func() (map[string][]byte, map[string]int, string) {
		dir := t.TempDir()
		var out strings.Builder
		if err := runSeries("C2670", "1k,4k", 3, dir, false, &out); err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		feats := map[string]int{}
		for _, n := range []string{"C2670_1k", "C2670_4k"} {
			path := filepath.Join(dir, n+".lay")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			files[n] = data
			l, err := mpl.ReadLayout(path)
			if err != nil {
				t.Fatalf("%s: %v", n, err)
			}
			feats[n] = len(l.Features)
		}
		return files, feats, strings.ReplaceAll(out.String(), dir, "<out>")
	}
	files, feats, out := emit()
	for name, want := range map[string]int{"C2670_1k": 1_000, "C2670_4k": 4_000} {
		if got := feats[name]; got < want*8/10 || got > want*12/10 {
			t.Errorf("%s: %d features, want within 20%% of %d", name, got, want)
		}
	}
	files2, _, out2 := emit()
	if out != out2 {
		t.Errorf("series status output not deterministic:\n%s\nvs\n%s", out, out2)
	}
	for name := range files {
		if !bytes.Equal(files[name], files2[name]) {
			t.Errorf("%s: series bytes differ between identical runs", name)
		}
	}
}

func TestSeedZeroMatchesCommittedBenchmarks(t *testing.T) {
	names := []string{"C432", "C499", "C880", "C1355", "C5315"}
	files, _ := generate(t, names, 0, 4)
	for _, n := range names {
		committed, err := os.ReadFile(filepath.Join("..", "..", "benchmarks", n+".lay"))
		if err != nil {
			t.Fatalf("%s: %v (the check is pinned to the committed .lay files)", n, err)
		}
		if !bytes.Equal(files[n], committed) {
			t.Errorf("seed 0 does not reproduce the committed benchmarks/%s.lay — "+
				"generation drifted; the golden table and fuzz corpus no longer match benchgen output", n)
		}
	}
}
