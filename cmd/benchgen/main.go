// Command benchgen generates the synthetic ISCAS-style benchmark layouts
// used to reproduce Tables 1 and 2 of the DAC'14 QPLD paper, writing one
// .lay file per circuit.
//
// Usage:
//
//	benchgen [-scale 1.0] [-out dir] [-circuits C432,S38417]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mpl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	scale := flag.Float64("scale", 1.0, "layout scale factor (1.0 = nominal size)")
	out := flag.String("out", "benchmarks", "output directory")
	circuits := flag.String("circuits", "", "comma-separated circuit names (default: all of Table 1)")
	binaryOut := flag.Bool("binary", false, "write the compact binary format (.layb) instead of text")
	flag.Parse()

	names := make([]string, 0, 15)
	if *circuits == "" {
		for _, s := range mpl.BenchmarkSuite() {
			names = append(names, s.Name)
		}
	} else {
		for _, n := range strings.Split(*circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, name := range names {
		l, err := mpl.GenerateBenchmark(name, *scale)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, name+".lay")
		write := l.WriteFile
		if *binaryOut {
			path = filepath.Join(*out, name+".layb")
			write = l.WriteBinaryFile
		}
		if err := write(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7d features -> %s\n", name, len(l.Features), path)
	}
}
