// Command benchgen generates the synthetic ISCAS-style benchmark layouts
// used to reproduce Tables 1 and 2 of the DAC'14 QPLD paper, writing one
// .lay file per circuit.
//
// Usage:
//
//	benchgen [-scale 1.0] [-seed 0] [-workers N] [-out dir] [-circuits C432,S38417]
//	benchgen -series 64k,256k,512k,1m [-series-base S38417] [-out dir]
//
// Generation is fully deterministic: for a fixed -scale and -seed the
// emitted files are byte-identical across runs and across any -workers
// value (TestBenchgenDeterministic pins this), and -seed 0 reproduces the
// committed benchmarks/*.lay bytes exactly. Non-zero seeds generate layout
// variants of each circuit (load testing, fuzz corpora) by mixing the seed
// into the circuit's name-derived base seed.
//
// -series emits a feature-count scale series of one circuit instead of the
// suite: each comma-separated target ("64k", "256k", "1m", or a plain
// number) becomes one <base>_<target>.lay whose scale factor is calibrated
// so the generated feature count lands near the target. The series feeds
// the million-feature build/solve scaling runs (cmd/evaluate -laydir) that
// EXPERIMENTS.md tracks; the files are generate-on-demand and never
// committed.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"mpl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	scale := flag.Float64("scale", 1.0, "layout scale factor (1.0 = nominal size)")
	seed := flag.Int64("seed", 0, "extra generation seed (0 = the committed baseline bytes)")
	out := flag.String("out", "benchmarks", "output directory")
	circuits := flag.String("circuits", "", "comma-separated circuit names (default: all of Table 1)")
	binaryOut := flag.Bool("binary", false, "write the compact binary format (.layb) instead of text")
	workers := flag.Int("workers", 1, "circuits generated concurrently (output is identical at any value)")
	series := flag.String("series", "", "comma-separated feature-count targets (64k,256k,1m): emit a scale series of -series-base instead of the suite")
	seriesBase := flag.String("series-base", "S38417", "circuit the -series scale steps are derived from")
	flag.Parse()

	if *series != "" {
		if *circuits != "" {
			log.Fatal("-series and -circuits are mutually exclusive")
		}
		if err := runSeries(*seriesBase, *series, *seed, *out, *binaryOut, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	names := make([]string, 0, 15)
	if *circuits == "" {
		for _, s := range mpl.BenchmarkSuite() {
			names = append(names, s.Name)
		}
	} else {
		for _, n := range strings.Split(*circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if err := run(names, *scale, *seed, *workers, *out, *binaryOut, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run generates every named circuit into outDir, fanning the work across
// workers goroutines. Each circuit's bytes depend only on (name, scale,
// seed) — never on scheduling — and status lines are collected and printed
// in input order, so the whole command is deterministic at any worker
// count. The first error wins; remaining work still drains.
func run(names []string, scale float64, seed int64, workers int, outDir string, binary bool, w io.Writer) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}

	type status struct {
		line string
		err  error
	}
	results := make([]status, len(names))
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				line, err := generateOne(names[i], scale, seed, outDir, binary)
				results[i] = status{line: line, err: err}
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		fmt.Fprint(w, r.line)
	}
	return nil
}

// runSeries emits one layout per feature-count target, scaling base so the
// generated feature count lands near each target. The calibration generates
// base once at scale 1 to measure its nominal feature count (feature counts
// grow linearly in scale), so the series needs no hard-coded per-circuit
// constants. Targets run sequentially in input order: series sizes are
// wildly uneven, so circuit-level parallelism buys nothing here, and the
// output bytes depend only on (base, target, seed) either way.
func runSeries(base, targets string, seed int64, outDir string, binary bool, w io.Writer) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	nominal, err := mpl.GenerateBenchmarkSeeded(base, 1.0, seed)
	if err != nil {
		return err
	}
	if len(nominal.Features) == 0 {
		return fmt.Errorf("series base %s has no features", base)
	}
	for _, tok := range strings.Split(targets, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		target, err := parseTarget(tok)
		if err != nil {
			return err
		}
		scale := float64(target) / float64(len(nominal.Features))
		name := fmt.Sprintf("%s_%s", base, tok)
		l, err := mpl.GenerateBenchmarkSeeded(base, scale, seed)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, name+".lay")
		write := l.WriteFile
		if binary {
			path = filepath.Join(outDir, name+".layb")
			write = l.WriteBinaryFile
		}
		if err := write(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %8d features (target %8d, scale %.3f) -> %s\n",
			name, len(l.Features), target, scale, path)
	}
	return nil
}

// parseTarget reads a feature-count target: a plain integer, or one with a
// k (thousand) or m (million) suffix, case-insensitive.
func parseTarget(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad series target %q (want e.g. 64k, 256k, 1m)", s)
	}
	return n * mult, nil
}

func generateOne(name string, scale float64, seed int64, outDir string, binary bool) (string, error) {
	l, err := mpl.GenerateBenchmarkSeeded(name, scale, seed)
	if err != nil {
		return "", err
	}
	path := filepath.Join(outDir, name+".lay")
	write := l.WriteFile
	if binary {
		path = filepath.Join(outDir, name+".layb")
		write = l.WriteBinaryFile
	}
	if err := write(path); err != nil {
		return "", err
	}
	return fmt.Sprintf("%-8s %7d features -> %s\n", name, len(l.Features), path), nil
}
