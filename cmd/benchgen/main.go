// Command benchgen generates the synthetic ISCAS-style benchmark layouts
// used to reproduce Tables 1 and 2 of the DAC'14 QPLD paper, writing one
// .lay file per circuit.
//
// Usage:
//
//	benchgen [-scale 1.0] [-seed 0] [-workers N] [-out dir] [-circuits C432,S38417]
//
// Generation is fully deterministic: for a fixed -scale and -seed the
// emitted files are byte-identical across runs and across any -workers
// value (TestBenchgenDeterministic pins this), and -seed 0 reproduces the
// committed benchmarks/*.lay bytes exactly. Non-zero seeds generate layout
// variants of each circuit (load testing, fuzz corpora) by mixing the seed
// into the circuit's name-derived base seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mpl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	scale := flag.Float64("scale", 1.0, "layout scale factor (1.0 = nominal size)")
	seed := flag.Int64("seed", 0, "extra generation seed (0 = the committed baseline bytes)")
	out := flag.String("out", "benchmarks", "output directory")
	circuits := flag.String("circuits", "", "comma-separated circuit names (default: all of Table 1)")
	binaryOut := flag.Bool("binary", false, "write the compact binary format (.layb) instead of text")
	workers := flag.Int("workers", 1, "circuits generated concurrently (output is identical at any value)")
	flag.Parse()

	names := make([]string, 0, 15)
	if *circuits == "" {
		for _, s := range mpl.BenchmarkSuite() {
			names = append(names, s.Name)
		}
	} else {
		for _, n := range strings.Split(*circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if err := run(names, *scale, *seed, *workers, *out, *binaryOut, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run generates every named circuit into outDir, fanning the work across
// workers goroutines. Each circuit's bytes depend only on (name, scale,
// seed) — never on scheduling — and status lines are collected and printed
// in input order, so the whole command is deterministic at any worker
// count. The first error wins; remaining work still drains.
func run(names []string, scale float64, seed int64, workers int, outDir string, binary bool, w io.Writer) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}

	type status struct {
		line string
		err  error
	}
	results := make([]status, len(names))
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				line, err := generateOne(names[i], scale, seed, outDir, binary)
				results[i] = status{line: line, err: err}
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		fmt.Fprint(w, r.line)
	}
	return nil
}

func generateOne(name string, scale float64, seed int64, outDir string, binary bool) (string, error) {
	l, err := mpl.GenerateBenchmarkSeeded(name, scale, seed)
	if err != nil {
		return "", err
	}
	path := filepath.Join(outDir, name+".lay")
	write := l.WriteFile
	if binary {
		path = filepath.Join(outDir, name+".layb")
		write = l.WriteBinaryFile
	}
	if err := write(path); err != nil {
		return "", err
	}
	return fmt.Sprintf("%-8s %7d features -> %s\n", name, len(l.Features), path), nil
}
