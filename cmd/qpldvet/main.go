// Command qpldvet runs the repository's custom static-analysis suite
// (internal/lint): four analyzers that enforce the determinism, context,
// scratch-ownership, and locking contracts every golden test and cache
// key in this codebase assumes (DESIGN.md §10).
//
// Usage:
//
//	go run ./cmd/qpldvet ./...          # whole module; exit 1 on findings
//	go run ./cmd/qpldvet -summary ./... # append per-analyzer counts
//	go run ./cmd/qpldvet -help          # analyzer docs
//
// Findings are suppressed per line with
//
//	//lint:ignore <analyzer> <reason>
//
// and the reason is mandatory — qpldvet reports reasonless directives.
// The tool is fully offline: packages (the standard library included) are
// type-checked from source, so it needs only the Go toolchain the module
// already builds with.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mpl/internal/lint"
	"mpl/internal/lint/lintkit"
)

func main() {
	summary := flag.Bool("summary", false, "print per-analyzer finding counts after the findings")
	docs := flag.Bool("docs", false, "print each analyzer's documentation and exit")
	flag.Usage = usage
	flag.Parse()

	analyzers := lint.Analyzers()
	if *docs {
		for _, a := range analyzers {
			fmt.Printf("%s:\n  %s\n\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lintkit.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *summary {
		counts := lintkit.Counts(diags, analyzers)
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("qpldvet: %d packages analyzed\n", len(pkgs))
		for _, name := range names {
			fmt.Printf("%s: %d finding(s)\n", name, counts[name])
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: qpldvet [-summary] [-docs] [packages]\n\n"+
		"qpldvet statically enforces this repository's determinism, context,\n"+
		"scratch-ownership, and locking contracts. See DESIGN.md §10.\n\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qpldvet:", err)
	os.Exit(2)
}
