// Package mpl is a layout decomposition library for quadruple patterning
// lithography (QPL) and general K-patterning, reproducing Yu & Pan,
// "Layout Decomposition for Quadruple Patterning Lithography and Beyond",
// DAC 2014 (arXiv:1404.0321).
//
// Given a layout — polygonal features on one layer — the decomposer builds
// the decomposition graph (conflict edges between features within the
// minimum coloring distance, stitch edges at projection-derived stitch
// candidates, color-friendly hints), divides it (independent components,
// low-degree peeling, biconnected blocks, Gomory–Hu-tree (K−1)-cut
// removal), assigns each fragment one of K masks with a selectable engine
// (exact ILP, SDP+Backtrack, SDP+Greedy, or the linear-time heuristic), and
// reports the conflict and stitch counts the paper's Tables 1–2 evaluate.
//
// Quick start:
//
//	l := mpl.NewLayout("demo")
//	l.AddRect(mpl.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
//	l.AddRect(mpl.Rect{X0: 40, Y0: 0, X1: 60, Y1: 20})
//	res, err := mpl.Decompose(l, mpl.Options{K: 4, Algorithm: mpl.SDPBacktrack})
//	if err != nil { ... }
//	fmt.Println(res.Conflicts, res.Stitches)
//	masks := res.Masks() // one shape list per mask
//
// The zero Options value selects quadruple patterning (K = 4) with the
// paper's parameters: α = 0.1, t_th = 0.9, and every graph-division
// technique enabled.
//
// # Cancellation and deadlines
//
// DecomposeContext and DecomposeGraphContext accept a context.Context and
// honor cancellation cooperatively: the SDP coordinate-descent loop, the
// merged-graph branch-and-bound, and the ILP search all poll the context
// and stop at their next checkpoint, returning their incumbent; graph
// pieces whose solve has not started fall back to the linear-time engine.
// A cancelled call therefore still returns a valid (possibly lower-quality)
// Result — Result.Degraded counts the fallback pieces and Result.Proven is
// false — so callers serving traffic under a deadline always get a usable
// mask assignment:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
//	defer cancel()
//	res, err := mpl.DecomposeContext(ctx, l, mpl.Options{K: 4})
//
// # Parallel graph construction
//
// Graph construction shards the layout into spatial tiles and builds stitch
// fragments and conflict/friend edges on a bounded worker pool
// (BuildOptions.Workers); a deterministic merge makes the resulting graph
// identical to a serial build at any worker count, so Workers is purely a
// wall-clock knob (DESIGN.md §3). Per-stage timings are reported in
// BuildStats.Timing, and BuildGraphContext cancels cooperatively.
//
// # Adaptive engine portfolio
//
// Options.Engine switches color assignment from one fixed Algorithm to
// per-component dispatch (DESIGN.md §8): "auto" profiles every connected
// component the division pipeline isolates (size, conflict density,
// odd-cycle evidence) and routes it to the cheapest engine predicted to
// reach reference quality — exact ILP on small hard cores, SDP+Backtrack
// in the middle, the linear-time engine on blocks too large for search —
// while "race" runs two candidate engines per component concurrently
// under Options.RaceBudget, keeps the first provably optimal result (or
// the better of the two), and cancels the loser:
//
//	res, err := mpl.Decompose(l, mpl.Options{K: 4, Engine: mpl.EngineAuto})
//
// On the committed benchmark circuits auto matches or beats the best
// fixed engine's conflict and stitch counts on every circuit at a small
// fraction of the exact baseline's solve time (EXPERIMENTS.md);
// Result.DivisionStats.Engines reports which engine colored how many
// pieces.
//
// # Incremental (ECO) decomposition
//
// ApplyEdits re-decomposes an edited layout in time proportional to the
// dirty region: only edited features (plus close neighbors whose stitch
// fragmentation changed) are rebuilt, and only the connected components
// touching them are re-solved — every other component keeps its prior
// colors. For the deterministic engines the result is exactly what a
// from-scratch Decompose of the edited layout would return (DESIGN.md §6):
//
//	edits := []mpl.Edit{{Op: mpl.EditMove, Feature: 17, DX: 40}}
//	newL, res2, stats, err := mpl.ApplyEdits(l, res, edits, opts)
//
// # Serving
//
// The qpld command's serve subcommand exposes decomposition as an HTTP
// JSON API backed by a layout-hash keyed LRU result cache, a
// bounded-concurrency batch runner, and sessions for incremental (ECO)
// serving via POST /v1/decompose/incremental (internal/service); see the
// README and docs/API.md.
package mpl

import (
	"context"
	"fmt"

	"mpl/internal/core"
	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/synth"
)

// Re-exported geometry and layout types: the public surface for building
// inputs programmatically.
type (
	// Point is a layout-grid location in database units (nm).
	Point = geom.Point
	// Rect is an axis-aligned rectangle (half-open, integer coordinates).
	Rect = geom.Rect
	// Polygon is a rectilinear shape stored as a union of rectangles.
	Polygon = geom.Polygon
	// Layout is a named set of polygonal features on one layer.
	Layout = layout.Layout
	// Process carries technology parameters (wm, sm, half pitch).
	Process = layout.Process
)

// Decomposition types.
type (
	// Options configures a decomposition; see core.Options for all knobs.
	Options = core.Options
	// BuildOptions configures decomposition-graph construction, including
	// BuildOptions.Workers, the parallel-build shard count.
	BuildOptions = core.BuildOptions
	// BuildStats summarizes a constructed decomposition graph, including
	// per-stage build timing.
	BuildStats = core.BuildStats
	// BuildTiming is the per-stage wall clock of one graph build.
	BuildTiming = core.BuildTiming
	// Result is a completed decomposition with per-fragment mask colors.
	Result = core.Result
	// Algorithm selects the color-assignment engine.
	Algorithm = core.Algorithm
	// Fragment is one decomposition-graph vertex: a piece of a feature.
	Fragment = core.Fragment
	// DecompGraph couples the decomposition graph with fragment geometry.
	DecompGraph = core.Graph
)

// Incremental (ECO) decomposition types.
type (
	// Edit is one ECO operation on a layout (add / remove / move).
	Edit = core.Edit
	// EditOp selects the kind of an Edit.
	EditOp = core.EditOp
	// EditStats reports how much work ApplyEdits reused versus redid.
	EditStats = core.EditStats
)

// The three ECO operations.
const (
	// EditAdd appends Edit.Shape as a new feature.
	EditAdd = core.EditAdd
	// EditRemove deletes feature Edit.Feature (later features shift down).
	EditRemove = core.EditRemove
	// EditMove translates feature Edit.Feature by (Edit.DX, Edit.DY).
	EditMove = core.EditMove
)

// Engine policies for Options.Engine: adaptive per-component dispatch
// instead of one fixed Algorithm (internal/portfolio; DESIGN.md §"Engine
// selection & racing").
const (
	// EngineAuto picks an engine per connected component from its
	// structure (size, conflict density, odd-cycle evidence): exact ILP on
	// small hard cores, SDP+Backtrack in the middle, the cheaper engines
	// on components too large for search.
	EngineAuto = core.EngineAuto
	// EngineRace runs two candidate engines per component concurrently
	// under Options.RaceBudget, keeps the first provably optimal result
	// (or the better of the two), and cancels the loser via context.
	EngineRace = core.EngineRace
)

// ParseEngine validates an Options.Engine policy name: "auto", "race" or
// "" (fixed Algorithm).
func ParseEngine(s string) (string, error) { return core.ParseEngine(s) }

// The four color-assignment engines of the paper (Tables 1 and 2).
const (
	// ILP is the exact integer-linear-programming baseline.
	ILP = core.AlgILP
	// SDPBacktrack is semidefinite relaxation + merged-graph backtracking
	// (Algorithm 1): near-optimal, the paper's quality reference.
	SDPBacktrack = core.AlgSDPBacktrack
	// SDPGreedy is semidefinite relaxation + greedy mapping: ≈2× faster
	// than SDPBacktrack, noticeably worse conflict counts.
	SDPGreedy = core.AlgSDPGreedy
	// Linear is the O(n) three-stage heuristic (Algorithm 2): ≈200× faster
	// with ≈15% more conflicts in the paper's Table 1.
	Linear = core.AlgLinear
)

// NewLayout returns an empty layout using the paper's 20 nm half-pitch
// process (wm = sm = hp = 20 nm).
func NewLayout(name string) *Layout { return layout.New(name) }

// NewPolygon builds a rectilinear polygon from rectangles.
func NewPolygon(rects ...Rect) Polygon { return geom.NewPolygon(rects...) }

// Decompose runs the full flow of the paper's Fig. 2 on a layout: graph
// construction, division, color assignment, reassembly.
func Decompose(l *Layout, opts Options) (*Result, error) {
	return core.Decompose(l, opts)
}

// DecomposeContext is Decompose with cooperative cancellation: on ctx
// cancellation or deadline expiry the expensive engines stop at their next
// checkpoint and unsolved graph pieces fall back to the linear-time
// heuristic, so a valid best-effort Result is still returned (with
// Result.Degraded > 0 and Result.Proven == false).
func DecomposeContext(ctx context.Context, l *Layout, opts Options) (*Result, error) {
	return core.DecomposeContext(ctx, l, opts)
}

// DecomposeGraphContext is DecomposeGraph with the cancellation semantics
// of DecomposeContext.
func DecomposeGraphContext(ctx context.Context, g *DecompGraph, opts Options) (*Result, error) {
	return core.DecomposeGraphContext(ctx, g, opts)
}

// BuildGraph constructs only the decomposition graph, for callers that want
// to inspect it or run several engines over the same graph. Set
// BuildOptions.Workers to shard construction across goroutines — the graph
// is identical at any worker count (see DESIGN.md §3).
func BuildGraph(l *Layout, opts BuildOptions) (*DecompGraph, error) {
	return core.BuildGraph(l, opts)
}

// BuildGraphContext is BuildGraph with cooperative cancellation. Unlike
// DecomposeContext, which degrades rather than fails, a cancelled build
// returns a wrapped ctx error: a half-built graph has no degraded form.
func BuildGraphContext(ctx context.Context, l *Layout, opts BuildOptions) (*DecompGraph, error) {
	return core.BuildGraphContext(ctx, l, opts)
}

// DecomposeGraph colors an already-built decomposition graph.
func DecomposeGraph(g *DecompGraph, opts Options) (*Result, error) {
	return core.DecomposeGraph(g, opts)
}

// ApplyEdits incrementally re-decomposes an edited layout: l and prev are
// the layout and Result of the previous run under the same opts. Only the
// dirty region — edited features, neighbors within the coloring distance
// whose fragmentation changed, and the connected components touching them —
// is rebuilt and re-solved; every other component keeps its prior colors.
// For the deterministic engines the result is exactly what a from-scratch
// Decompose of the edited layout would return (DESIGN.md §6); the
// randomized harness in internal/core/incremental_test.go and the
// FuzzApplyEdits fuzz target enforce that equivalence.
func ApplyEdits(l *Layout, prev *Result, edits []Edit, opts Options) (*Layout, *Result, *EditStats, error) {
	return core.ApplyEdits(context.Background(), l, prev, edits, opts)
}

// ApplyEditsContext is ApplyEdits with the cancellation semantics of
// DecomposeContext: a dead context degrades the dirty components to the
// linear-time fallback instead of failing.
func ApplyEditsContext(ctx context.Context, l *Layout, prev *Result, edits []Edit, opts Options) (*Layout, *Result, *EditStats, error) {
	return core.ApplyEdits(ctx, l, prev, edits, opts)
}

// EditLayout applies the edits to the layout without decomposing anything —
// the pure geometry half of ApplyEdits.
func EditLayout(l *Layout, edits []Edit) (*Layout, error) {
	return core.EditLayout(l, edits)
}

// ParseAlgorithm maps "ilp", "sdp-backtrack", "sdp-greedy" or "linear" to
// an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Verify independently recounts conflicts and stitches from fragment
// geometry (a cross-check of graph construction and coloring).
func Verify(r *Result) (conflicts, stitches int, err error) {
	return core.VerifySolution(r)
}

// ReadLayout parses a layout file in either the text (.lay) or binary
// (.layb) format, sniffing the header.
func ReadLayout(path string) (*Layout, error) { return layout.ReadAny(path) }

// Benchmark generation: deterministic synthetic stand-ins for the paper's
// scaled ISCAS benchmark suite (see DESIGN.md §2 for the substitution).

// BenchmarkCircuit describes one synthetic benchmark circuit.
type BenchmarkCircuit = synth.Spec

// BenchmarkSuite lists the fifteen Table 1 circuits in paper order.
func BenchmarkSuite() []BenchmarkCircuit {
	return append([]BenchmarkCircuit(nil), synth.Table1...)
}

// PentupleSuite lists the six densest circuits evaluated in Table 2.
func PentupleSuite() []string {
	return append([]string(nil), synth.Table2Names...)
}

// GenerateBenchmark builds the named synthetic circuit at the given scale
// (1.0 = nominal size; generation is deterministic).
func GenerateBenchmark(name string, scale float64) (*Layout, error) {
	return synth.GenerateByName(name, scale)
}

// GenerateBenchmarkSeeded is GenerateBenchmark with an extra seed mixed
// into the circuit's deterministic base seed, producing layout variants of
// one circuit. Seed 0 reproduces GenerateBenchmark bit for bit.
func GenerateBenchmarkSeeded(name string, scale float64, seed int64) (*Layout, error) {
	spec, ok := synth.ByName(name)
	if !ok {
		return nil, fmt.Errorf("mpl: unknown circuit %q", name)
	}
	return synth.GenerateSeeded(spec, scale, seed), nil
}

// BalanceMasks rotates whole components' colors to even out per-mask
// pattern density without changing conflicts or stitches (the
// balanced-density extension). It mutates res.Colors and returns the
// density spread before and after.
func BalanceMasks(res *Result) (before, after float64) {
	return core.BalanceMasks(res)
}
